package obs

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"sdsrp/internal/msg"
)

// typeByName inverts Type.String for the offline decode path.
var typeByName = func() map[string]Type {
	m := make(map[string]Type, numTypes)
	for t := Type(0); int(t) < numTypes; t++ {
		m[t.String()] = t
	}
	return m
}()

// TypeByName resolves a wire name ("created", "snapshot", …) back to its
// Type. ok is false for unknown names.
func TypeByName(name string) (Type, bool) {
	t, ok := typeByName[name]
	return t, ok
}

// eventWire mirrors the JSONL field set for decoding. Fields absent from a
// line stay zero, matching the encoder's "meaningful fields only" contract.
type eventWire struct {
	T          float64 `json:"t"`
	Type       string  `json:"type"`
	Msg        int64   `json:"msg"`
	Node       int     `json:"node"`
	Peer       int     `json:"peer"`
	Size       int64   `json:"size"`
	Copies     int     `json:"copies"`
	Hops       int     `json:"hops"`
	Latency    float64 `json:"latency"`
	Priority   float64 `json:"priority"`
	Kind       string  `json:"kind"`
	LiveMsgs   int     `json:"live_msgs"`
	LiveCopies int     `json:"live_copies"`
	Contacts   int     `json:"contacts"`
	Queue      int     `json:"queue"`
	Used       []int64 `json:"used"`
}

// ParseEvent decodes one JSONL line back into an Event. It is the inverse
// of AppendJSON for every event type, including snapshots.
func ParseEvent(line []byte) (Event, error) {
	var w eventWire
	if err := json.Unmarshal(line, &w); err != nil {
		return Event{}, fmt.Errorf("obs: bad event line: %w", err)
	}
	t, ok := TypeByName(w.Type)
	if !ok {
		return Event{}, fmt.Errorf("obs: unknown event type %q", w.Type)
	}
	return Event{
		T:          w.T,
		Type:       t,
		Msg:        msg.ID(w.Msg),
		Node:       w.Node,
		Peer:       w.Peer,
		Size:       w.Size,
		Copies:     w.Copies,
		Hops:       w.Hops,
		Latency:    w.Latency,
		Priority:   w.Priority,
		Kind:       w.Kind,
		LiveMsgs:   w.LiveMsgs,
		LiveCopies: w.LiveCopies,
		Contacts:   w.Contacts,
		Queue:      w.Queue,
		Used:       w.Used,
	}, nil
}

// LogReader streams events from a JSONL log, tracking line numbers for
// error reporting and diff context.
type LogReader struct {
	s    *bufio.Scanner
	line int
}

// NewLogReader reads events from r (one JSON object per line). Snapshot
// lines carry per-node arrays, so the line buffer allows up to 16 MiB.
func NewLogReader(r io.Reader) *LogReader {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 0, 64<<10), 16<<20)
	return &LogReader{s: s}
}

// Next returns the next event. It returns io.EOF at end of input and a
// line-numbered error on malformed lines.
func (r *LogReader) Next() (Event, error) {
	for r.s.Scan() {
		r.line++
		raw := r.s.Bytes()
		if len(raw) == 0 {
			continue
		}
		ev, err := ParseEvent(raw)
		if err != nil {
			return Event{}, fmt.Errorf("line %d: %w", r.line, err)
		}
		return ev, nil
	}
	if err := r.s.Err(); err != nil {
		return Event{}, err
	}
	return Event{}, io.EOF
}

// Line returns the line number of the event most recently returned by Next.
func (r *LogReader) Line() int { return r.line }

// OpenLog opens an event log for reading, transparently decompressing when
// the path ends in ".gz". Closing the returned reader closes the file.
func OpenLog(path string) (io.ReadCloser, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	if !strings.HasSuffix(path, ".gz") {
		return f, nil
	}
	zr, err := gzip.NewReader(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: %s: %w", path, err)
	}
	return &gzipReadCloser{zr: zr, f: f}, nil
}

type gzipReadCloser struct {
	zr *gzip.Reader
	f  *os.File
}

func (g *gzipReadCloser) Read(p []byte) (int, error) { return g.zr.Read(p) }

func (g *gzipReadCloser) Close() error {
	zerr := g.zr.Close()
	ferr := g.f.Close()
	if zerr != nil {
		return zerr
	}
	return ferr
}

// CreateLog creates an event log for writing, transparently gzipping when
// the path ends in ".gz". Closing the returned writer flushes the
// compressor and closes the file.
func CreateLog(path string) (io.WriteCloser, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if !strings.HasSuffix(path, ".gz") {
		return f, nil
	}
	return &gzipWriteCloser{zw: gzip.NewWriter(f), f: f}, nil
}

type gzipWriteCloser struct {
	zw *gzip.Writer
	f  *os.File
}

func (g *gzipWriteCloser) Write(p []byte) (int, error) { return g.zw.Write(p) }

func (g *gzipWriteCloser) Close() error {
	zerr := g.zw.Close()
	ferr := g.f.Close()
	if zerr != nil {
		return zerr
	}
	return ferr
}
