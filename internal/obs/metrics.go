package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// histMinExp is the smallest power-of-two exponent the histogram resolves:
// bucket 0 collapses everything below 2^histMinExp (≈ 1 µs when observing
// seconds). Sub-unit values — sub-second latencies, fractional drop scores
// in [0,1) — therefore keep factor-of-two resolution instead of quantizing
// to zero.
const histMinExp = -20

// histBuckets spans exponents histMinExp … 64: bucket i (i ≥ 1) holds
// values in [2^(i-1+histMinExp), 2^(i+histMinExp)).
const histBuckets = 64 - histMinExp + 1

// Histogram is a log2-bucketed distribution of non-negative values: cheap
// to feed from a hot path, good enough for order-of-magnitude quantiles of
// transfer sizes, latencies, and drop scores. Resolution is a factor of two
// across the whole range [2^-20, 2^64); values below 2^-20 collapse into
// bucket 0 and quantile-estimate as 0.
type Histogram struct {
	count    uint64
	sum      float64
	min, max float64
	buckets  [histBuckets]uint64
}

// Observe records v. Negative values clamp to 0.
func (h *Histogram) Observe(v float64) {
	if v < 0 {
		v = 0
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bucketOf(v)]++
}

func bucketOf(v float64) int {
	if v <= 0 {
		return 0
	}
	// v = f·2^exp with f ∈ [0.5,1), so v ∈ [2^(exp-1), 2^exp).
	_, exp := math.Frexp(v)
	b := exp - histMinExp
	if b < 0 {
		return 0
	}
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the total of all observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() float64 { return h.min }

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() float64 { return h.max }

// Quantile returns an upper-bound estimate of the q-quantile (q in [0,1]):
// the upper edge of the bucket containing the q-th observation, clamped to
// the observed maximum. Resolution is a factor of two down to 2^-20
// (values below that report as 0) — sufficient for perf triage, not for
// paper metrics.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.buckets {
		seen += c
		if seen >= rank {
			if i == 0 {
				// Below the 2^histMinExp resolution floor: effectively zero.
				return 0
			}
			if i == histBuckets-1 {
				// Overflow bucket: its nominal edge understates the contents.
				return h.max
			}
			upper := math.Ldexp(1, i+histMinExp) // exclusive bucket upper edge
			if upper > h.max {
				upper = h.max
			}
			return upper
		}
	}
	return h.max
}

// Metrics folds events into a counters/histogram registry: per-type event
// counts, per-host policy-drop counts, transfer-size and delivery-latency
// distributions. It implements Tracer and can run beside a JSONL sink via
// Multi.
type Metrics struct {
	counts [numTypes]uint64
	drops  map[int]uint64

	// TransferBytes observes the payload size of every started transfer.
	TransferBytes Histogram
	// Latency observes the creation-to-delivery delay of every delivery.
	Latency Histogram
	// EvictPriority observes the drop score of every policy eviction.
	EvictPriority Histogram
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{drops: make(map[int]uint64)}
}

// Emit implements Tracer.
func (m *Metrics) Emit(ev Event) {
	if int(ev.Type) < numTypes {
		m.counts[ev.Type]++
	}
	switch ev.Type {
	case MessageDropped:
		m.drops[ev.Node]++
		m.EvictPriority.Observe(ev.Priority)
	case TransferStart:
		m.TransferBytes.Observe(float64(ev.Size))
	case MessageDelivered:
		m.Latency.Observe(ev.Latency)
	}
}

// Count returns how many events of type t were seen.
func (m *Metrics) Count(t Type) uint64 {
	if int(t) >= numTypes {
		return 0
	}
	return m.counts[t]
}

// Total returns the number of events seen across all types.
func (m *Metrics) Total() uint64 {
	var n uint64
	for _, c := range m.counts {
		n += c
	}
	return n
}

// DropsAt returns the policy-drop count at one host.
func (m *Metrics) DropsAt(node int) uint64 { return m.drops[node] }

// DropsByNode returns (node, drops) pairs sorted by node id. The counter
// map's keys are sorted before the samples are built, so the emitted order
// never depends on map iteration.
func (m *Metrics) DropsByNode() []NodeCount {
	nodes := make([]int, 0, len(m.drops))
	for n := range m.drops {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	out := make([]NodeCount, 0, len(nodes))
	for _, n := range nodes {
		out = append(out, NodeCount{Node: n, Count: m.drops[n]})
	}
	return out
}

// NodeCount is one per-host counter sample.
type NodeCount struct {
	Node  int
	Count uint64
}

// String summarizes the registry on one line.
func (m *Metrics) String() string {
	var b strings.Builder
	for t := 0; t < numTypes; t++ {
		if m.counts[t] == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", Type(t), m.counts[t])
	}
	if b.Len() == 0 {
		return "no events"
	}
	return b.String()
}

// RunStats is the engine-level performance digest of one run: how much work
// the simulator did and how fast the hardware chewed through it.
type RunStats struct {
	// SimSeconds is the simulated horizon reached.
	SimSeconds float64
	// Events counts dispatched (non-canceled) engine events.
	Events uint64
	// PeakQueue is the maximum pending-event queue depth observed.
	PeakQueue int
	// WallSeconds is the real time spent inside the engine run loop.
	WallSeconds float64
	// PairsChecked counts the contact scanner's distance-predicate
	// evaluations; PairsSkipped counts work the scan strategy proved
	// unnecessary — pair-ticks parked in the lazy scanner's wake wheel or
	// permanently retired, or node-ticks parked by the kinetic scanner
	// (always 0 in naive mode); Wakeups counts entries woken from the
	// strategy's wake wheel. All zero in contact-trace-driven runs, which
	// have no scanner.
	PairsChecked uint64
	PairsSkipped uint64
	Wakeups      uint64
	// ShardWindows, ShardBarriers, and ShardHandoffs report the sharded
	// parallel scan's progress (DESIGN.md §13): lookahead windows opened
	// (stripe reassignments), barriers crossed (two per scan tick — one
	// after parallel position sampling, one after parallel candidate
	// enumeration), and candidate contacts that straddled two stripes and
	// were merged serially at the barrier. All zero on serial runs —
	// including the silent fallback when Workers ≥ 2 but the scenario
	// admits no conservative window — so ShardWindows == 0 on a
	// Workers ≥ 2 run is the documented fallback signal. Like the scan
	// counters above, these describe strategy work, not simulation
	// outcome: they vary across worker counts while Events, PeakQueue,
	// and the event trace itself stay byte-identical.
	ShardWindows  uint64
	ShardBarriers uint64
	ShardHandoffs uint64
	// ScanFallback records every scan-strategy substitution the run made,
	// comma-joined in occurrence order (e.g.
	// "lazy:pair-index-overflow->kinetic"). Empty when the configured
	// strategy ran to completion. Fallbacks never change the event trace —
	// every strategy is byte-identical — only the performance profile.
	ScanFallback string
}

// EventsPerSec returns the dispatch throughput (0 when no wall time was
// recorded).
func (r RunStats) EventsPerSec() float64 {
	if r.WallSeconds <= 0 {
		return 0
	}
	return float64(r.Events) / r.WallSeconds
}

// String formats the digest as the dtnsim perf summary line. The scan
// counters are appended only when a scanner ran, keeping the line stable
// for scheduled (trace-replay) runs.
func (r RunStats) String() string {
	s := fmt.Sprintf("events=%d events/sec=%.0f peak-queue=%d wall=%.3fs sim=%.0fs",
		r.Events, r.EventsPerSec(), r.PeakQueue, r.WallSeconds, r.SimSeconds)
	if r.PairsChecked > 0 || r.PairsSkipped > 0 {
		s += fmt.Sprintf(" pairs-checked=%d pairs-skipped=%d wakeups=%d",
			r.PairsChecked, r.PairsSkipped, r.Wakeups)
	}
	if r.ShardWindows > 0 || r.ShardBarriers > 0 {
		s += fmt.Sprintf(" shard-windows=%d shard-barriers=%d shard-handoffs=%d",
			r.ShardWindows, r.ShardBarriers, r.ShardHandoffs)
	}
	if r.ScanFallback != "" {
		s += " scan-fallback=" + r.ScanFallback
	}
	return s
}
