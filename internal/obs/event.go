// Package obs is the simulator's observability layer: structured lifecycle
// events, pluggable sinks, and run-level performance metrics.
//
// The design follows the ONE simulator's report modules and UDTNSim's event
// log: every message, contact, and transfer transition is a typed Event that
// instrumented packages emit through a Tracer. A nil Tracer disables tracing
// at zero cost — emit sites guard with a nil check and build no Event on the
// disabled path — so the hot loops of internal/sim and internal/routing pay
// nothing when observability is off.
//
// Sinks:
//
//   - JSONL writes one deterministic JSON object per line (same seed ⇒
//     byte-identical log), for offline lifecycle reconstruction.
//   - Ring keeps the last N events in memory, for tests and debugging.
//   - Metrics folds events into counters and histograms (per-host drops,
//     transfer sizes, delivery latencies).
//   - Multi fans an event out to several sinks.
package obs

import (
	"strconv"

	"sdsrp/internal/msg"
)

// Type classifies a trace event.
type Type uint8

const (
	// MessageCreated: a source generated a message (Node = source,
	// Peer = destination, Size, Copies = initial spray tokens L).
	MessageCreated Type = iota
	// MessageForwarded: a replication transfer committed (Node = sender,
	// Peer = receiver, Copies = tokens the receiver obtained, Kind = spray /
	// spray-source / relay / handoff).
	MessageForwarded
	// MessageDelivered: the destination consumed the message (Node = last
	// relay, Peer = destination, Hops, Latency seconds since creation).
	MessageDelivered
	// MessageDropped: a buffer-management eviction — the paper's policy
	// drop (Node = evicting host, Priority = the policy's drop score for
	// the victim at eviction time; for SDSRP this is the Eq. 10 utility).
	MessageDropped
	// MessageExpired: TTL removal (Node = host sweeping the copy).
	MessageExpired
	// MessageRefused: a transfer declined before or after the bytes moved —
	// dropped-list rejection, duplicate copy, or preflight overflow
	// (Node = sender, Peer = refusing receiver).
	MessageRefused
	// ContactUp: two nodes moved into radio range (Node < Peer).
	ContactUp
	// ContactDown: the contact ended (Node < Peer).
	ContactDown
	// TransferStart: bytes started moving (Node = sender, Peer = receiver,
	// Size, Kind).
	TransferStart
	// TransferAbort: an in-flight transfer died — link down, TTL expiry in
	// flight, or the sender's copy vanished (Node = sender, Peer =
	// receiver).
	TransferAbort
	// TransferLost: the transfer completed on the wire but the receiver
	// discarded it — injected radio loss or a black-hole node swallowing the
	// copy (Node = sender, Peer = receiver).
	TransferLost
	// NodeDown: churn crashed the host (Node).
	NodeDown
	// NodeUp: the host rebooted after an outage (Node).
	NodeUp
	// LinkFlap: the fault layer cut a live contact short (Node < Peer); a
	// contact_down for the pair follows immediately.
	LinkFlap
	// Snapshot: a periodic whole-network state sample emitted by the
	// world's sampler (LiveMsgs distinct buffered messages, LiveCopies
	// total buffered copies, Contacts active links, Queue live engine
	// events, Used per-node buffer occupancy in bytes). Snapshots ride the
	// same deterministic JSONL stream as lifecycle events, giving offline
	// tools the congestion signal without a second log.
	Snapshot

	numTypes = int(Snapshot) + 1
)

// String returns the stable wire name used in the JSONL log.
func (t Type) String() string {
	switch t {
	case MessageCreated:
		return "created"
	case MessageForwarded:
		return "forwarded"
	case MessageDelivered:
		return "delivered"
	case MessageDropped:
		return "dropped"
	case MessageExpired:
		return "expired"
	case MessageRefused:
		return "refused"
	case ContactUp:
		return "contact_up"
	case ContactDown:
		return "contact_down"
	case TransferStart:
		return "transfer_start"
	case TransferAbort:
		return "transfer_abort"
	case TransferLost:
		return "transfer_lost"
	case NodeDown:
		return "node_down"
	case NodeUp:
		return "node_up"
	case LinkFlap:
		return "link_flap"
	case Snapshot:
		return "snapshot"
	default:
		return "unknown"
	}
}

// Event is one simulation occurrence. Which fields are meaningful depends on
// Type (see the Type constants); AppendJSON serializes exactly the
// meaningful set, so the log carries no zero-noise.
type Event struct {
	T        float64 // simulation time in seconds
	Type     Type
	Msg      msg.ID  // message-scoped events
	Node     int     // primary actor (sender, holder, or lower contact end)
	Peer     int     // counterpart (receiver, destination, upper contact end)
	Size     int64   // bytes (created, transfer_start)
	Copies   int     // spray tokens (created, forwarded)
	Hops     int     // path length (delivered)
	Latency  float64 // seconds from creation to delivery (delivered)
	Priority float64 // policy drop score of the victim (dropped)
	Kind     string  // transfer semantics (forwarded, transfer_start)

	// Snapshot-only fields (Type == Snapshot); zero otherwise.
	LiveMsgs   int     // distinct messages with at least one buffered copy
	LiveCopies int     // buffered copies network-wide
	Contacts   int     // active links at sample time
	Queue      int     // live (non-canceled) engine events pending
	Used       []int64 // per-node buffer occupancy in bytes, indexed by node
}

// AppendJSON appends the event as a single JSON object (no trailing newline)
// and returns the extended slice. Encoding is deterministic: fixed key
// order, strconv 'g' float formatting, no reflection.
func (e Event) AppendJSON(b []byte) []byte {
	b = append(b, `{"t":`...)
	b = strconv.AppendFloat(b, e.T, 'g', -1, 64)
	b = append(b, `,"type":"`...)
	b = append(b, e.Type.String()...)
	b = append(b, '"')
	switch e.Type {
	case ContactUp, ContactDown:
		b = appendIntField(b, "node", int64(e.Node))
		b = appendIntField(b, "peer", int64(e.Peer))
	case MessageCreated:
		b = appendIntField(b, "msg", int64(e.Msg))
		b = appendIntField(b, "node", int64(e.Node))
		b = appendIntField(b, "peer", int64(e.Peer))
		b = appendIntField(b, "size", e.Size)
		b = appendIntField(b, "copies", int64(e.Copies))
	case MessageForwarded:
		b = appendIntField(b, "msg", int64(e.Msg))
		b = appendIntField(b, "node", int64(e.Node))
		b = appendIntField(b, "peer", int64(e.Peer))
		b = appendIntField(b, "copies", int64(e.Copies))
		b = appendStrField(b, "kind", e.Kind)
	case MessageDelivered:
		b = appendIntField(b, "msg", int64(e.Msg))
		b = appendIntField(b, "node", int64(e.Node))
		b = appendIntField(b, "peer", int64(e.Peer))
		b = appendIntField(b, "hops", int64(e.Hops))
		b = appendFloatField(b, "latency", e.Latency)
	case MessageDropped:
		b = appendIntField(b, "msg", int64(e.Msg))
		b = appendIntField(b, "node", int64(e.Node))
		b = appendFloatField(b, "priority", e.Priority)
	case MessageExpired:
		b = appendIntField(b, "msg", int64(e.Msg))
		b = appendIntField(b, "node", int64(e.Node))
	case MessageRefused, TransferAbort, TransferLost:
		b = appendIntField(b, "msg", int64(e.Msg))
		b = appendIntField(b, "node", int64(e.Node))
		b = appendIntField(b, "peer", int64(e.Peer))
	case NodeDown, NodeUp:
		b = appendIntField(b, "node", int64(e.Node))
	case LinkFlap:
		b = appendIntField(b, "node", int64(e.Node))
		b = appendIntField(b, "peer", int64(e.Peer))
	case TransferStart:
		b = appendIntField(b, "msg", int64(e.Msg))
		b = appendIntField(b, "node", int64(e.Node))
		b = appendIntField(b, "peer", int64(e.Peer))
		b = appendIntField(b, "size", e.Size)
		b = appendStrField(b, "kind", e.Kind)
	case Snapshot:
		b = appendIntField(b, "live_msgs", int64(e.LiveMsgs))
		b = appendIntField(b, "live_copies", int64(e.LiveCopies))
		b = appendIntField(b, "contacts", int64(e.Contacts))
		b = appendIntField(b, "queue", int64(e.Queue))
		b = append(b, `,"used":[`...)
		for i, u := range e.Used {
			if i > 0 {
				b = append(b, ',')
			}
			b = strconv.AppendInt(b, u, 10)
		}
		b = append(b, ']')
	}
	return append(b, '}')
}

func appendIntField(b []byte, key string, v int64) []byte {
	b = append(b, ',', '"')
	b = append(b, key...)
	b = append(b, '"', ':')
	return strconv.AppendInt(b, v, 10)
}

func appendFloatField(b []byte, key string, v float64) []byte {
	b = append(b, ',', '"')
	b = append(b, key...)
	b = append(b, '"', ':')
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// appendStrField assumes v needs no JSON escaping; event Kind strings are
// fixed protocol identifiers.
func appendStrField(b []byte, key string, v string) []byte {
	b = append(b, ',', '"')
	b = append(b, key...)
	b = append(b, '"', ':', '"')
	b = append(b, v...)
	return append(b, '"')
}
