package obs

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// allTypeEvents is one fully-populated event per type, exercising every
// AppendJSON field subset.
func allTypeEvents() []Event {
	return []Event{
		{T: 1.5, Type: MessageCreated, Msg: 7, Node: 2, Peer: 9, Size: 25000, Copies: 32},
		{T: 10, Type: MessageForwarded, Msg: 7, Node: 2, Peer: 3, Copies: 16, Kind: "spray"},
		{T: 20.25, Type: MessageDelivered, Msg: 7, Node: 3, Peer: 9, Hops: 2, Latency: 18.75},
		{T: 30, Type: MessageDropped, Msg: 7, Node: 0, Priority: 0.125},
		{T: 40, Type: MessageExpired, Msg: 7, Node: 5},
		{T: 50, Type: MessageRefused, Msg: 7, Node: 1, Peer: 2},
		{T: 60, Type: ContactUp, Node: 0, Peer: 4},
		{T: 70, Type: ContactDown, Node: 0, Peer: 4},
		{T: 80, Type: TransferStart, Msg: 7, Node: 1, Peer: 2, Size: 25000, Kind: "delivery"},
		{T: 90, Type: TransferAbort, Msg: 7, Node: 1, Peer: 2},
		{T: 100, Type: TransferLost, Msg: 7, Node: 1, Peer: 2},
		{T: 110, Type: NodeDown, Node: 3},
		{T: 120, Type: NodeUp, Node: 3},
		{T: 130, Type: LinkFlap, Node: 0, Peer: 4},
		{T: 140, Type: Snapshot, LiveMsgs: 3, LiveCopies: 7, Contacts: 2, Queue: 15,
			Used: []int64{0, 25000, 50000}},
	}
}

func TestParseEventRoundTrip(t *testing.T) {
	for _, want := range allTypeEvents() {
		line := want.AppendJSON(nil)
		got, err := ParseEvent(line)
		if err != nil {
			t.Fatalf("%v: %v", want.Type, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%v round-trip:\n got %+v\nwant %+v", want.Type, got, want)
		}
	}
}

func TestParseEventRejectsGarbage(t *testing.T) {
	if _, err := ParseEvent([]byte("not json")); err == nil {
		t.Error("garbage line parsed")
	}
	if _, err := ParseEvent([]byte(`{"t":1,"type":"no_such_type"}`)); err == nil {
		t.Error("unknown type parsed")
	}
}

func TestTypeByName(t *testing.T) {
	for ty := Type(0); int(ty) < numTypes; ty++ {
		got, ok := TypeByName(ty.String())
		if !ok || got != ty {
			t.Errorf("TypeByName(%q) = %v, %v", ty.String(), got, ok)
		}
	}
	if _, ok := TypeByName("unknown"); ok {
		t.Error("the unknown sentinel must not resolve")
	}
}

func TestLogReaderLineNumbersErrors(t *testing.T) {
	in := strings.NewReader(`{"t":1,"type":"contact_up","node":0,"peer":1}` + "\n" +
		`{"t":2,"type":"contact_down"` + "\n")
	lr := NewLogReader(in)
	if _, err := lr.Next(); err != nil {
		t.Fatalf("line 1: %v", err)
	}
	_, err := lr.Next()
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("want line-2 error, got %v", err)
	}
}

func TestOpenCreateLogGzip(t *testing.T) {
	dir := t.TempDir()
	evs := allTypeEvents()
	for _, name := range []string{"plain.jsonl", "packed.jsonl.gz"} {
		path := filepath.Join(dir, name)
		w, err := CreateLog(path)
		if err != nil {
			t.Fatal(err)
		}
		j := NewJSONL(w)
		for _, ev := range evs {
			j.Emit(ev)
		}
		if err := j.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}

		r, err := OpenLog(path)
		if err != nil {
			t.Fatal(err)
		}
		lr := NewLogReader(r)
		var got []Event
		for {
			ev, err := lr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			got = append(got, ev)
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, evs) {
			t.Fatalf("%s: round-trip mismatch", name)
		}
	}

	// The .gz file must actually be gzip (magic bytes), not plain text.
	raw, err := os.ReadFile(filepath.Join(dir, "packed.jsonl.gz"))
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) < 2 || !bytes.Equal(raw[:2], []byte{0x1f, 0x8b}) {
		t.Fatal("packed.jsonl.gz is not gzip-compressed")
	}
}
