package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestAppendJSONPerType(t *testing.T) {
	cases := []struct {
		ev   Event
		want string
	}{
		{Event{T: 1.5, Type: MessageCreated, Msg: 7, Node: 2, Peer: 9, Size: 25000, Copies: 32},
			`{"t":1.5,"type":"created","msg":7,"node":2,"peer":9,"size":25000,"copies":32}`},
		{Event{T: 10, Type: MessageForwarded, Msg: 7, Node: 2, Peer: 3, Copies: 16, Kind: "spray"},
			`{"t":10,"type":"forwarded","msg":7,"node":2,"peer":3,"copies":16,"kind":"spray"}`},
		{Event{T: 20.25, Type: MessageDelivered, Msg: 7, Node: 3, Peer: 9, Hops: 2, Latency: 18.75},
			`{"t":20.25,"type":"delivered","msg":7,"node":3,"peer":9,"hops":2,"latency":18.75}`},
		{Event{T: 30, Type: MessageDropped, Msg: 7, Node: 0, Priority: 0.125},
			`{"t":30,"type":"dropped","msg":7,"node":0,"priority":0.125}`},
		{Event{T: 40, Type: MessageExpired, Msg: 7, Node: 5},
			`{"t":40,"type":"expired","msg":7,"node":5}`},
		{Event{T: 50, Type: MessageRefused, Msg: 7, Node: 1, Peer: 2},
			`{"t":50,"type":"refused","msg":7,"node":1,"peer":2}`},
		{Event{T: 60, Type: ContactUp, Node: 0, Peer: 4},
			`{"t":60,"type":"contact_up","node":0,"peer":4}`},
		{Event{T: 70, Type: ContactDown, Node: 0, Peer: 4},
			`{"t":70,"type":"contact_down","node":0,"peer":4}`},
		{Event{T: 80, Type: TransferStart, Msg: 7, Node: 1, Peer: 2, Size: 25000, Kind: "delivery"},
			`{"t":80,"type":"transfer_start","msg":7,"node":1,"peer":2,"size":25000,"kind":"delivery"}`},
		{Event{T: 90, Type: TransferAbort, Msg: 7, Node: 1, Peer: 2},
			`{"t":90,"type":"transfer_abort","msg":7,"node":1,"peer":2}`},
		{Event{T: 100, Type: TransferLost, Msg: 7, Node: 1, Peer: 2},
			`{"t":100,"type":"transfer_lost","msg":7,"node":1,"peer":2}`},
		{Event{T: 110, Type: NodeDown, Node: 3},
			`{"t":110,"type":"node_down","node":3}`},
		{Event{T: 120, Type: NodeUp, Node: 3},
			`{"t":120,"type":"node_up","node":3}`},
		{Event{T: 130, Type: LinkFlap, Node: 0, Peer: 4},
			`{"t":130,"type":"link_flap","node":0,"peer":4}`},
		{Event{T: 140, Type: Snapshot, LiveMsgs: 3, LiveCopies: 7, Contacts: 2, Queue: 15, Used: []int64{0, 25000, 50000}},
			`{"t":140,"type":"snapshot","live_msgs":3,"live_copies":7,"contacts":2,"queue":15,"used":[0,25000,50000]}`},
	}
	for _, c := range cases {
		got := string(c.ev.AppendJSON(nil))
		if got != c.want {
			t.Errorf("%v:\n got %s\nwant %s", c.ev.Type, got, c.want)
		}
		// Every line must also be valid JSON.
		var m map[string]any
		if err := json.Unmarshal([]byte(got), &m); err != nil {
			t.Errorf("%v: invalid JSON %q: %v", c.ev.Type, got, err)
		}
	}
}

func TestJSONLWritesLines(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	j.Emit(Event{T: 1, Type: ContactUp, Node: 0, Peer: 1})
	j.Emit(Event{T: 2, Type: ContactDown, Node: 0, Peer: 1})
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	for _, l := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(l), &m); err != nil {
			t.Fatalf("bad line %q: %v", l, err)
		}
	}
}

func TestRingWraps(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		r.Emit(Event{T: float64(i), Type: ContactUp})
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	if r.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", r.Dropped())
	}
	evs := r.Events()
	for i, want := range []float64{2, 3, 4} {
		if evs[i].T != want {
			t.Errorf("event %d at t=%v, want %v", i, evs[i].T, want)
		}
	}
}

func TestMultiFiltersNils(t *testing.T) {
	if tr := Multi(nil, nil); tr != nil {
		t.Fatalf("Multi(nil, nil) = %v, want nil", tr)
	}
	r := NewRing(4)
	if tr := Multi(nil, r); tr != Tracer(r) {
		t.Fatalf("Multi with one live sink should return it directly")
	}
	r2 := NewRing(4)
	tr := Multi(r, r2)
	tr.Emit(Event{T: 1, Type: ContactUp})
	if r.Len() != 1 || r2.Len() != 1 {
		t.Fatalf("fan-out failed: %d, %d", r.Len(), r2.Len())
	}
}

func TestMetricsRegistry(t *testing.T) {
	m := NewMetrics()
	m.Emit(Event{Type: MessageDropped, Node: 3, Priority: 2})
	m.Emit(Event{Type: MessageDropped, Node: 3, Priority: 4})
	m.Emit(Event{Type: MessageDropped, Node: 1, Priority: 6})
	m.Emit(Event{Type: TransferStart, Size: 1 << 10})
	m.Emit(Event{Type: MessageDelivered, Latency: 120})

	if got := m.Count(MessageDropped); got != 3 {
		t.Errorf("Count(dropped) = %d, want 3", got)
	}
	if got := m.DropsAt(3); got != 2 {
		t.Errorf("DropsAt(3) = %d, want 2", got)
	}
	byNode := m.DropsByNode()
	if len(byNode) != 2 || byNode[0].Node != 1 || byNode[1].Node != 3 {
		t.Errorf("DropsByNode = %v", byNode)
	}
	if m.TransferBytes.Count() != 1 || m.TransferBytes.Mean() != 1024 {
		t.Errorf("TransferBytes = %v/%v", m.TransferBytes.Count(), m.TransferBytes.Mean())
	}
	if m.Latency.Mean() != 120 {
		t.Errorf("Latency mean = %v", m.Latency.Mean())
	}
	if m.EvictPriority.Mean() != 4 {
		t.Errorf("EvictPriority mean = %v", m.EvictPriority.Mean())
	}
	if s := m.String(); !strings.Contains(s, "dropped=3") {
		t.Errorf("String() = %q", s)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 100 || h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("count/min/max = %v/%v/%v", h.Count(), h.Min(), h.Max())
	}
	med := h.Quantile(0.5)
	// Log2 buckets: the median (50) lands in the [32,64) bucket, whose upper
	// edge is 64.
	if med < 50 || med > 64 {
		t.Errorf("median estimate %v outside [50,64]", med)
	}
	if q := h.Quantile(1); q != 100 {
		t.Errorf("q100 = %v, want clamped max 100", q)
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	var empty Histogram
	for _, q := range []float64{0, 0.5, 1} {
		if got := empty.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}

	var one Histogram
	one.Observe(7)
	// A single observation occupies one bucket; every quantile clamps to it.
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := one.Quantile(q); got != 7 {
			t.Errorf("single-value Quantile(%v) = %v, want 7", q, got)
		}
	}

	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if got := h.Quantile(0); got < 1 || got > 2 {
		t.Errorf("Quantile(0) = %v, want within first occupied bucket [1,2]", got)
	}
	if got := h.Quantile(1); got != 100 {
		t.Errorf("Quantile(1) = %v, want clamped max 100", got)
	}

	// Values beyond the largest bucket edge clamp into the top bucket and
	// quantile-estimate as the observed max.
	var big Histogram
	big.Observe(math.MaxFloat64)
	if got := big.Quantile(0.5); got != math.MaxFloat64 {
		t.Errorf("overflow Quantile = %v, want MaxFloat64", got)
	}
}

func TestHistogramSubUnitResolution(t *testing.T) {
	// The old uint64-truncating bucketer collapsed everything in [0,1) into
	// one bucket, so distributions of drop scores or sub-second latencies
	// quantized to zero. Fractional values must now keep factor-of-two
	// resolution.
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(0.01)
	}
	for i := 0; i < 10; i++ {
		h.Observe(0.9)
	}
	med := h.Quantile(0.5)
	if med <= 0 || med > 0.02 {
		t.Errorf("sub-unit median = %v, want in (0, 0.02]", med)
	}
	p99 := h.Quantile(0.99)
	if p99 < 0.5 || p99 > 1 {
		t.Errorf("sub-unit p99 = %v, want in [0.5, 1]", p99)
	}

	// Below the 2^-20 resolution floor the estimate degrades to 0 — by
	// contract, not by accident.
	var tiny Histogram
	tiny.Observe(1e-9)
	if got := tiny.Quantile(0.5); got != 0 {
		t.Errorf("sub-floor Quantile = %v, want 0", got)
	}
	if tiny.Max() != 1e-9 {
		t.Errorf("Max = %v, want exact 1e-9", tiny.Max())
	}
}

func TestRunStatsString(t *testing.T) {
	r := RunStats{SimSeconds: 18000, Events: 100000, PeakQueue: 42, WallSeconds: 2}
	if r.EventsPerSec() != 50000 {
		t.Errorf("EventsPerSec = %v", r.EventsPerSec())
	}
	s := r.String()
	for _, want := range []string{"events=100000", "events/sec=50000", "peak-queue=42", "sim=18000s"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	if (RunStats{}).EventsPerSec() != 0 {
		t.Error("zero wall should give 0 events/sec")
	}
	if strings.Contains(s, "scan-fallback") {
		t.Errorf("String() = %q mentions scan-fallback without one recorded", s)
	}
	r.ScanFallback = "lazy:pair-index-overflow->kinetic"
	if s := r.String(); !strings.Contains(s, "scan-fallback=lazy:pair-index-overflow->kinetic") {
		t.Errorf("String() = %q missing the fallback segment", s)
	}
}
