package obs

import (
	"encoding/json"
	"fmt"
	"io"

	"sdsrp/internal/msg"
)

// Forward is one committed replication in a message's provenance: the
// sender, the receiver, the spray tokens the receiver obtained, and the
// transfer kind ("spray", "spray-source", "relay", "handoff").
type Forward struct {
	T      float64 `json:"t"`
	From   int     `json:"from"`
	To     int     `json:"to"`
	Copies int     `json:"copies"`
	Kind   string  `json:"kind"`
}

// Removal is one copy leaving a buffer: a policy eviction (cause "policy",
// with the policy's drop score at eviction time) or a TTL sweep (cause
// "expired").
type Removal struct {
	T        float64 `json:"t"`
	Node     int     `json:"node"`
	Cause    string  `json:"cause"`
	Priority float64 `json:"priority"`
}

// Fate classifies a message's terminal state at the fold horizon.
const (
	// FateDelivered: the destination consumed the message.
	FateDelivered = "delivered"
	// FateExpired: every copy is gone and the last removal was a TTL sweep.
	FateExpired = "expired"
	// FateDropped: every copy is gone and the last removal was a policy
	// eviction (the paper's buffer-management death).
	FateDropped = "dropped"
	// FateStranded: undelivered with copies still buffered at the horizon.
	FateStranded = "stranded"
)

// MessageRecord is the folded lifecycle of one message: its identity, every
// custody transition in stream order, and the reconstructed terminal state.
// Field order is the stable JSONL schema — encoding/json emits struct
// fields in declaration order, so same-seed ledgers are byte-identical.
type MessageRecord struct {
	ID            msg.ID    `json:"id"`
	Source        int       `json:"source"`
	Dest          int       `json:"dest"`
	Created       float64   `json:"created"`
	Size          int64     `json:"size"`
	InitialCopies int       `json:"copies"`
	Fate          string    `json:"fate"`
	DeliveredAt   float64   `json:"delivered_at,omitempty"`
	Latency       float64   `json:"latency,omitempty"`
	Hops          int       `json:"hops,omitempty"`
	Path          []int     `json:"path,omitempty"`
	LiveCopies    int       `json:"live_copies,omitempty"`
	Refused       int       `json:"refused,omitempty"`
	Aborted       int       `json:"aborted,omitempty"`
	Lost          int       `json:"lost,omitempty"`
	Forwards      []Forward `json:"forwards,omitempty"`
	Removals      []Removal `json:"removals,omitempty"`

	delivered bool
	// lastRelay is the node whose copy served the delivery; deliverIdx is
	// len(Forwards) at delivery time, so path reconstruction ignores sprays
	// that happened after the destination was already served.
	lastRelay  int
	deliverIdx int
	// holders tracks which nodes currently buffer a copy, per the event
	// stream. Internal: callers read LiveCopies after finalize.
	holders map[int]bool
}

// Ledger folds a run's event stream into per-message provenance records —
// the offline complement of the live Metrics sink. It implements Tracer, so
// it can ride a run directly (via Multi) or replay a JSONL log through
// LogReader.
//
// Known blind spots, inherent to the event vocabulary: ACK-immunization
// purges and churn buffer wipes remove copies without emitting per-message
// events, so under Scenario.UseAcks or fault churn with buffer wipe the
// ledger over-counts live copies (such messages lean toward FateStranded).
// All counters cross-checked by `dtntrace stats` are exact regardless.
type Ledger struct {
	recs  map[msg.ID]*MessageRecord
	order []*MessageRecord
	// deliveries keeps delivered records in delivery order: latency
	// aggregation must accumulate in the same order as the collector's
	// running sum for bit-identical means.
	deliveries []*MessageRecord
	horizon    float64
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{recs: make(map[msg.ID]*MessageRecord)}
}

// rec returns the record for id, creating a stub for messages whose created
// event predates the fold (truncated logs).
func (l *Ledger) rec(id msg.ID) *MessageRecord {
	r, ok := l.recs[id]
	if !ok {
		r = &MessageRecord{ID: id, Source: -1, Dest: -1, holders: make(map[int]bool)}
		l.recs[id] = r
		l.order = append(l.order, r)
	}
	return r
}

// Emit implements Tracer, folding one event into the ledger.
func (l *Ledger) Emit(ev Event) {
	if ev.T > l.horizon {
		l.horizon = ev.T
	}
	switch ev.Type {
	case MessageCreated:
		r := l.rec(ev.Msg)
		r.Source, r.Dest = ev.Node, ev.Peer
		r.Created, r.Size, r.InitialCopies = ev.T, ev.Size, ev.Copies
		r.holders[ev.Node] = true
	case MessageForwarded:
		r := l.rec(ev.Msg)
		r.Forwards = append(r.Forwards, Forward{T: ev.T, From: ev.Node,
			To: ev.Peer, Copies: ev.Copies, Kind: ev.Kind})
		r.holders[ev.Peer] = true
		if ev.Kind == "handoff" {
			delete(r.holders, ev.Node)
		}
	case MessageDelivered:
		r := l.rec(ev.Msg)
		if !r.delivered {
			r.delivered = true
			r.DeliveredAt, r.Latency, r.Hops = ev.T, ev.Latency, ev.Hops
			r.lastRelay, r.deliverIdx = ev.Node, len(r.Forwards)
			l.deliveries = append(l.deliveries, r)
		}
		// The delivering node discards its now-useless copy.
		delete(r.holders, ev.Node)
	case MessageDropped:
		r := l.rec(ev.Msg)
		r.Removals = append(r.Removals, Removal{T: ev.T, Node: ev.Node,
			Cause: "policy", Priority: ev.Priority})
		delete(r.holders, ev.Node)
	case MessageExpired:
		r := l.rec(ev.Msg)
		r.Removals = append(r.Removals, Removal{T: ev.T, Node: ev.Node,
			Cause: "expired"})
		delete(r.holders, ev.Node)
	case MessageRefused:
		l.rec(ev.Msg).Refused++
	case TransferAbort:
		l.rec(ev.Msg).Aborted++
	case TransferLost:
		// The preceding forwarded event credited the receiver with a copy
		// the black-hole (or lossy radio) never stored.
		r := l.rec(ev.Msg)
		r.Lost++
		delete(r.holders, ev.Peer)
	}
}

// Horizon returns the timestamp of the last folded event.
func (l *Ledger) Horizon() float64 { return l.horizon }

// Len returns the number of messages seen.
func (l *Ledger) Len() int { return len(l.order) }

// Deliveries returns delivered records in delivery order (finalized).
func (l *Ledger) Deliveries() []*MessageRecord {
	l.finalize()
	return l.deliveries
}

// Records returns every message record in creation order with fates,
// live-copy counts, and delivery paths finalized.
func (l *Ledger) Records() []*MessageRecord {
	l.finalize()
	return l.order
}

// Record returns the finalized record for one message (nil when unseen).
func (l *Ledger) Record(id msg.ID) *MessageRecord {
	r, ok := l.recs[id]
	if !ok {
		return nil
	}
	l.finalize()
	return r
}

func (l *Ledger) finalize() {
	for _, r := range l.order {
		r.LiveCopies = len(r.holders)
		switch {
		case r.delivered:
			r.Fate = FateDelivered
			r.reconstructPath()
		case r.LiveCopies > 0:
			r.Fate = FateStranded
		case len(r.Removals) > 0 && r.Removals[len(r.Removals)-1].Cause == "expired":
			r.Fate = FateExpired
		default:
			// Every copy died by eviction (including drop-on-arrival at the
			// source: a created event immediately followed by a drop).
			r.Fate = FateDropped
		}
	}
}

// reconstructPath rebuilds the custody chain of the delivered copy: walk
// backwards from the delivering relay through the forward that gave each
// carrier its copy (the latest one before the carrier passed it on, so
// re-received copies resolve to the right lineage), terminating at the
// originator. The result runs source → … → lastRelay → dest.
func (r *MessageRecord) reconstructPath() {
	rev := []int{r.Dest, r.lastRelay}
	cur, idx := r.lastRelay, r.deliverIdx
	for {
		found := -1
		for i := idx - 1; i >= 0; i-- {
			if r.Forwards[i].To == cur {
				found = i
				break
			}
		}
		if found < 0 {
			break // cur acquired the copy by originating it
		}
		cur, idx = r.Forwards[found].From, found
		rev = append(rev, cur)
	}
	path := make([]int, len(rev))
	for i, n := range rev {
		path[len(rev)-1-i] = n
	}
	r.Path = path
}

// FoldLog replays a JSONL event log (any io.Reader; use OpenLog for files)
// into a fresh ledger and the event-count registry.
func FoldLog(r io.Reader) (*Ledger, *Metrics, error) {
	l := NewLedger()
	m := NewMetrics()
	lr := NewLogReader(r)
	for {
		ev, err := lr.Next()
		if err == io.EOF {
			return l, m, nil
		}
		if err != nil {
			return nil, nil, err
		}
		l.Emit(ev)
		m.Emit(ev)
	}
}

// WriteJSONL writes every finalized record as one JSON object per line, in
// creation order. Same seed ⇒ byte-identical output: records are emitted
// from the deterministic order slice, never from map iteration.
func (l *Ledger) WriteJSONL(w io.Writer) error {
	for _, r := range l.Records() {
		b, err := json.Marshal(r)
		if err != nil {
			return fmt.Errorf("obs: encoding ledger record %d: %w", r.ID, err)
		}
		if _, err := w.Write(append(b, '\n')); err != nil {
			return err
		}
	}
	return nil
}
