package sdsrp_test

import (
	"fmt"

	"sdsrp"
)

// The smallest useful session: run a scaled-down Table II scenario and read
// the three headline metrics. Everything is deterministic from the seed.
func ExampleRun() {
	sc := sdsrp.RandomWaypointScenario()
	sc.Nodes = 24
	sc.Area.Max.X, sc.Area.Max.Y = 1200, 900
	sc.Duration, sc.TTL = 2500, 2500
	sc.Seed = 1

	res, err := sdsrp.Run(sc)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("created=%d delivered=%d\n", res.Created, res.Delivered)
	fmt.Printf("deterministic=%v\n", mustRun(sc).Summary == res.Summary)
	// Output:
	// created=82 delivered=34
	// deterministic=true
}

func mustRun(sc sdsrp.Scenario) sdsrp.Result {
	r, err := sdsrp.Run(sc)
	if err != nil {
		panic(err)
	}
	return r
}

// Comparing the paper's four buffer-management strategies on one scenario.
func ExampleRunAll() {
	var scs []sdsrp.Scenario
	for _, pol := range sdsrp.PaperPolicies() {
		sc := sdsrp.RandomWaypointScenario()
		sc.Nodes = 24
		sc.Area.Max.X, sc.Area.Max.Y = 1200, 900
		sc.Duration, sc.TTL = 2500, 2500
		sc.PolicyName = pol
		scs = append(scs, sc)
	}
	results, err := sdsrp.RunAll(scs, 0)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for i, r := range results {
		fmt.Printf("%s delivered %d\n", scs[i].PolicyName, r.Delivered)
	}
	// Output:
	// SprayAndWait delivered 35
	// SprayAndWait-O delivered 29
	// SprayAndWait-C delivered 31
	// SDSRP delivered 34
}

// Regenerating a paper figure programmatically. Fig. 4 is pure math, so it
// runs instantly and its panel renders to markdown, TSV, ASCII or SVG.
func ExampleRunExperiment() {
	panels, err := sdsrp.RunExperiment("fig4", sdsrp.ExperimentOptions{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	p := panels[0]
	fmt.Println(p.ID, len(p.Curves), "curves")
	// Output:
	// fig4 5 curves
}
